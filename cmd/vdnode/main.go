// Command vdnode runs one versadep process on a real TCP network: a
// replica hosting a demo counter application, or a client driving it.
// This is the live-deployment counterpart of the simulated experiments —
// the same replicator stack over internal/transport/tcptransport.
//
// A three-replica group with one client, on one machine:
//
//	vdnode -role replica -name ra -bind 127.0.0.1:7001 \
//	       -peers "ra=127.0.0.1:7001,rb=127.0.0.1:7002,rc=127.0.0.1:7003"
//	vdnode -role replica -name rb -bind 127.0.0.1:7002 -seeds ra \
//	       -peers "ra=127.0.0.1:7001,rb=127.0.0.1:7002,rc=127.0.0.1:7003"
//	vdnode -role replica -name rc -bind 127.0.0.1:7003 -seeds ra \
//	       -peers "ra=127.0.0.1:7001,rb=127.0.0.1:7002,rc=127.0.0.1:7003"
//	vdnode -role client -name c1 -bind 127.0.0.1:7010 -members ra,rb,rc \
//	       -peers "ra=127.0.0.1:7001,rb=127.0.0.1:7002,rc=127.0.0.1:7003" \
//	       -requests 100
//
// Clients need not appear in the replicas' -peers registries: every frame
// advertises its sender's listening address, so replicas learn where to
// send replies. Kill any replica (including the primary) while the client
// runs: the group reconfigures and the client's requests keep completing.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"versadep/internal/cliflag"
	"versadep/internal/gcs"
	"versadep/internal/introspect"
	"versadep/internal/obsplane"
	"versadep/internal/policy"
	"versadep/internal/replication"
	"versadep/internal/replicator"
	"versadep/internal/shard"
	"versadep/internal/transport"
	"versadep/internal/transport/chaoswire"
	"versadep/internal/transport/tcptransport"
	"versadep/internal/vtime"
	"versadep/internal/workload"
)

// policyOpts bundles the autonomic-adaptation flags for the replica role.
type policyOpts struct {
	spec     string
	cooldown time.Duration
	every    time.Duration
	spawnCmd string
}

// replicaOpts bundles the state-transfer and transport tuning flags.
type replicaOpts struct {
	stateBytes    int
	transferChunk int
	transferWin   int
	dialAttempts  int
	dialBackoff   time.Duration
	suspectAfter  time.Duration
	detector      string
	chaos         string
	slo           string
	scrapeEvery   time.Duration
	shard         string
}

func main() {
	var (
		role     = flag.String("role", "replica", "replica or client")
		name     = flag.String("name", "", "this node's logical name")
		bind     = flag.String("bind", "", "host:port to listen on")
		peersStr = flag.String("peers", "", "comma-separated name=host:port registry")
		seedsStr = flag.String("seeds", "", "comma-separated seed names (replica role)")
		members  = flag.String("members", "", "comma-separated group member names (client role)")
		style    = flag.String("style", "active", "replication style (replica role)")
		requests = flag.Int("requests", 100, "requests to issue (client role)")
		traceDmp = flag.Bool("trace", false, "dump the trace-counter registry as JSON on exit")
		intro    = flag.String("introspect", "", "host:port for the live introspection endpoint (/metrics, /trace, /policy, /debug/pprof)")
		polSpec  = flag.String("policy", "", "autonomic policy stack in priority order, e.g. \"avail=0.995:5,rate=500:250,bwcap=3:2,linkretry=0.99\" (replica role)")
		cooldown = flag.Duration("cooldown", 5*time.Second, "minimum time between actuations of the same knob (flap damping)")
		adaptEv  = flag.Duration("adapt-every", time.Second, "controller sampling period")
		spawnCmd = flag.String("spawn-cmd", "", "shell command launching one fresh replica (gets VDNODE_SEEDS in its environment); enables the grow knob")
		stateB   = flag.Int("state-bytes", 4096, "demo application state size (replica role; sets the joiner transfer volume)")
		xferChnk = flag.Int("transfer-chunk", 0, "joiner state-transfer chunk size in bytes (0 = engine default)")
		xferWin  = flag.Int("transfer-window", 0, "unacked chunks in flight per joiner transfer (0 = engine default)")
		dialAtt  = flag.Int("dial-attempts", 0, "transport dial attempts per send before dropping (0 = transport default)")
		dialBack = flag.Duration("dial-backoff", 0, "base backoff between dial attempts (0 = transport default)")
		suspect  = flag.Duration("suspect-after", 0, "failure-detector silence threshold (0 = group default; raise when large transfers may delay heartbeats)")
		detector = flag.String("detector", "", "failure detector: \"phi\" or \"phi:THRESH\" (accrual suspicion) or \"timeout\" (fixed silence window only); default = group default")
		chaosArg = flag.String("chaos", "", "perturb this node's outbound wire traffic with chaos faults, \"SPEC[:SEED]\" (e.g. \"drop=0.05,corrupt=0.02:7\"; see internal/faults/chaos)")
		sloSpec  = flag.String("slo", "", "SLO spec to evaluate over this node's own metrics, e.g. \"p99<50ms,avail>0.999:30s\"; serves /slo and feeds the policy controller's burn-rate signals")
		scrape   = flag.String("scrape", "", "aggregator role: comma-separated name=http://host:port introspection endpoints to scrape")
		scrapeEv = flag.Duration("scrape-every", time.Second, "observability sampling/scrape period (replica self-grading and aggregator role)")
		shardArg = flag.String("shard", "", "serve shard k of an N-shard deployment as \"k/N\" (replica role; stamps the group's frames with group id k and NAKs objects owned by other shards)")
		shardMem = flag.String("shard-members", "", "sharded client: semicolon-separated shard groups \"0:ra,rb,rc;1:sa,sb,sc\"; each request routes to the shard owning its object (client role)")
	)
	flag.Parse()
	pol := policyOpts{spec: *polSpec, cooldown: *cooldown, every: *adaptEv, spawnCmd: *spawnCmd}
	rep := replicaOpts{stateBytes: *stateB, transferChunk: *xferChnk, transferWin: *xferWin,
		dialAttempts: *dialAtt, dialBackoff: *dialBack, suspectAfter: *suspect,
		detector: *detector, chaos: *chaosArg,
		slo: *sloSpec, scrapeEvery: *scrapeEv, shard: *shardArg}
	if *role == "aggregator" {
		if err := runAggregator(*bind, *scrape, *sloSpec, *scrapeEv); err != nil {
			fmt.Fprintln(os.Stderr, "vdnode:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*role, *name, *bind, *peersStr, *seedsStr, *members, *shardMem, *style, *requests, *traceDmp, *intro, pol, rep); err != nil {
		fmt.Fprintln(os.Stderr, "vdnode:", err)
		os.Exit(1)
	}
}

func parsePeers(s string) (map[string]string, error) {
	peers := make(map[string]string)
	if s == "" {
		return peers, nil
	}
	for _, pair := range strings.Split(s, ",") {
		name, addr, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("bad peer entry %q (want name=host:port)", pair)
		}
		peers[name] = addr
	}
	return peers, nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func run(role, name, bind, peersStr, seedsStr, membersStr, shardMembers, styleName string, requests int, traceDump bool, intro string, pol policyOpts, rep replicaOpts) error {
	if name == "" || bind == "" {
		return fmt.Errorf("-name and -bind are required")
	}
	peers, err := parsePeers(peersStr)
	if err != nil {
		return err
	}
	var tOpts []tcptransport.Option
	if rep.dialAttempts > 0 || rep.dialBackoff > 0 {
		rc := tcptransport.DefaultRetry()
		if rep.dialAttempts > 0 {
			rc.DialAttempts = rep.dialAttempts
		}
		if rep.dialBackoff > 0 {
			rc.BackoffBase = rep.dialBackoff
		}
		tOpts = append(tOpts, tcptransport.WithRetry(rc))
	}
	ep, err := tcptransport.Listen(name, bind, peers, tOpts...)
	if err != nil {
		return err
	}

	// The chaos wrapper perturbs this node's outbound wire traffic with
	// the per-message fault classes of the spec; corruption is caught and
	// dropped by the receivers' frame checksums.
	var wire transport.MultiEndpoint = ep
	var cw *chaoswire.Endpoint
	if rep.chaos != "" {
		spec, seed, err := cliflag.Chaos(rep.chaos)
		if err != nil {
			_ = ep.Close()
			return err
		}
		cw = chaoswire.Wrap(ep, spec, seed)
		wire = cw
		fmt.Printf("[%s] wire chaos on: %s (seed %d)\n", name, spec, seed)
	}

	switch role {
	case "replica":
		return runReplica(ep, wire, cw, splitList(seedsStr), styleName, traceDump, intro, pol, rep)
	case "client":
		return runClient(wire, cw, splitList(membersStr), shardMembers, requests, traceDump, intro)
	default:
		_ = ep.Close()
		return fmt.Errorf("unknown role %q", role)
	}
}

// detectorGauges publishes the failure detector's live suspicion state on
// /metrics: each tracked peer's current phi level and a 0/1 flag per
// suspected peer. Scraping phi over time shows the detector adapt to the
// network's latency distribution (a spike raises phi briefly; a crash
// drives it through the threshold).
func detectorGauges(node *replicator.ReplicaNode) func() map[string]float64 {
	return func() map[string]float64 {
		g := make(map[string]float64)
		for peer, phi := range node.Member().PhiSnapshot() {
			g[fmt.Sprintf("versadep_detector_phi{peer=%q}", peer)] = phi
		}
		for _, peer := range node.Member().Suspects() {
			g[fmt.Sprintf("versadep_detector_suspect{peer=%q}", peer)] = 1
		}
		return g
	}
}

// wireGauges publishes the transport's wire-integrity counters — frames
// the CRC caught and dropped, dial/reconnect churn — plus, when chaos
// injection is on, how many outbound messages each fault class touched.
func wireGauges(ep *tcptransport.Endpoint, cw *chaoswire.Endpoint) func() map[string]float64 {
	return func() map[string]float64 {
		st := ep.Stats()
		g := map[string]float64{
			"versadep_transport_corrupt_frames": float64(st.CorruptFrames),
			"versadep_transport_dropped":        float64(st.Dropped),
			"versadep_transport_reconnects":     float64(st.Reconnects),
		}
		if cw != nil {
			cs := cw.Stats()
			g["versadep_chaos_injected_drops"] = float64(cs.Dropped)
			g["versadep_chaos_injected_dups"] = float64(cs.Duplicated)
			g["versadep_chaos_injected_delays"] = float64(cs.Delayed)
			g["versadep_chaos_injected_corruptions"] = float64(cs.Corrupted)
		}
		return g
	}
}

// serveIntrospect starts the live observability endpoint when addr is
// nonempty, returning a cleanup func (a no-op when disabled).
func serveIntrospect(addr string, src introspect.Source, opts ...introspect.Option) (func(), error) {
	if addr == "" {
		return func() {}, nil
	}
	s, err := introspect.Start(addr, src, opts...)
	if err != nil {
		return nil, fmt.Errorf("introspect: %w", err)
	}
	fmt.Printf("introspection at http://%s/ (/metrics, /trace, /policy, /debug/pprof)\n", s.Addr())
	return func() { _ = s.Close() }, nil
}

// startController builds and starts the autonomic controller for a
// replica when a policy spec is given. The controller runs on every
// replica but is gated to actuate only while this node is the synced
// primary, so the group has exactly one closed loop at any time (and it
// migrates with the primary role on failover). When the replica grades
// itself against an SLO (-slo), the engine's attainment and burn-rate
// signals decorate the sensor sample so burn-driven policies (burn=…)
// can act on them.
func startController(node *replicator.ReplicaNode, ep *tcptransport.Endpoint, pol policyOpts, slo *obsplane.Engine) (*policy.Controller, func(), error) {
	if pol.spec == "" {
		return nil, func() {}, nil
	}
	policies, err := cliflag.Policies(pol.spec)
	if err != nil {
		return nil, nil, err
	}
	act := &replicator.ElasticActuator{
		Node: node,
		// The dial-retry knob lands on the live transport: the LinkRetry
		// policy hardens reconnect budgets when availability sags.
		TuneRetry: func(attempts, backoffMs int) error {
			rc := ep.Retry()
			rc.DialAttempts = attempts
			rc.BackoffBase = time.Duration(backoffMs) * time.Millisecond
			ep.SetRetry(rc)
			return nil
		},
	}
	if pol.spawnCmd != "" {
		cmd := pol.spawnCmd
		act.Spawn = func(seeds []string) error {
			c := exec.Command("/bin/sh", "-c", cmd)
			c.Env = append(os.Environ(), "VDNODE_SEEDS="+strings.Join(seeds, ","))
			c.Stdout, c.Stderr = os.Stdout, os.Stderr
			return c.Start()
		}
	}
	sample := node.Sensors(nil)
	if slo != nil {
		sample = slo.Signals(sample)
	}
	ctrl := policy.New(policy.Config{
		Policies: policies,
		Sample:   sample,
		Actuator: act,
		Cooldown: pol.cooldown,
		Gate:     node.PolicyGate(),
		OnEntry: func(e policy.Entry) {
			if e.Err != "" {
				fmt.Printf("[%s] policy %s: %s %s FAILED: %s\n", node.Addr(), e.Policy, e.Knob, e.Action, e.Err)
				return
			}
			fmt.Printf("[%s] policy %s: %s — %s\n", node.Addr(), e.Policy, e.Action, e.Reason)
		},
	})
	stop := ctrl.Start(pol.every)
	fmt.Printf("[%s] autonomic controller on (%s), cooldown %v, sampling every %v\n",
		node.Addr(), pol.spec, pol.cooldown, pol.every)
	return ctrl, stop, nil
}

func runReplica(ep *tcptransport.Endpoint, wire transport.MultiEndpoint, cw *chaoswire.Endpoint, seeds []string, styleName string, traceDump bool, intro string, pol policyOpts, rep replicaOpts) error {
	style, err := replication.ParseStyle(styleName)
	if err != nil {
		return err
	}
	// Live mode keeps the virtual accounting inert but the protocol
	// identical; group timing must be looser than simulation defaults to
	// tolerate real-network scheduling.
	app := workload.NewBenchApp(rep.stateBytes, 0, 64)
	gcsCfg, err := cliflag.Detector(rep.detector, rep.suspectAfter)
	if err != nil {
		return err
	}
	// A sharded replica stamps its group's frames with the shard ID so
	// several groups can multiplex one transport; shard 0 keeps group id 0,
	// which encodes identically to the unsharded wire format.
	shardID, shardN, sharded, err := cliflag.Shard(rep.shard)
	if err != nil {
		return err
	}
	if sharded && shardID > 0 {
		if gcsCfg == nil {
			g := gcs.DefaultConfig()
			gcsCfg = &g
		}
		gcsCfg.GroupID = uint32(shardID)
	}
	node := replicator.StartReplica(wire, replicator.ReplicaConfig{
		Seeds: seeds,
		GCS:   gcsCfg,
		Replication: replication.Config{
			Style:              style,
			CheckpointEvery:    5,
			Model:              vtime.DefaultCostModel(),
			State:              app,
			TransferChunkBytes: rep.transferChunk,
			TransferWindow:     rep.transferWin,
			Observer: func(n replication.Notice) {
				switch n.Kind {
				case replication.NoticeSwitchDone:
					fmt.Printf("[%s] switched to %s\n", n.Addr, n.Style)
				case replication.NoticeFailover:
					fmt.Printf("[%s] failover complete\n", n.Addr)
				case replication.NoticeCheckpoint:
					fmt.Printf("[%s] checkpoint\n", n.Addr)
				case replication.NoticeRetire:
					fmt.Printf("[%s] retirement directive for %s\n", n.Addr, n.Peer)
				case replication.NoticeView:
					fmt.Printf("[%s] view change: %d members (%d crashed)\n", n.Addr, n.Members, n.Crashed)
				case replication.NoticeTransfer:
					// Per-chunk progress notices are dropped; only the
					// transfer milestones land in the log.
					switch {
					case n.Resumed:
						fmt.Printf("[%s] transfer resumed with %s at chunk %d/%d (serial %d)\n",
							n.Addr, n.Peer, n.Chunk, n.Chunks, n.Serial)
					case n.Chunk == n.Chunks:
						fmt.Printf("[%s] transfer complete with %s: %d chunks (serial %d)\n",
							n.Addr, n.Peer, n.Chunks, n.Serial)
					case n.Chunk == 0:
						fmt.Printf("[%s] transfer started with %s: %d chunks (serial %d)\n",
							n.Addr, n.Peer, n.Chunks, n.Serial)
					}
				}
			},
		},
	})
	node.Register("Bench", app)
	if sharded {
		// The ring needs only the shard IDs (placement is a pure function
		// of IDs and vnodes), so every replica and every router derives the
		// same ownership from just "k/N" — no membership exchange needed.
		groups := make([]shard.Group, shardN)
		for i := range groups {
			groups[i] = shard.Group{ID: i}
		}
		guard := shard.NewGuard(shardID, shard.NewMap(shard.DefaultVnodes, groups...))
		node.RegisterDefault(app)
		node.SetRouteCheck(func(object string) error {
			if object == "Bench" {
				return nil // the unsharded demo object bypasses placement
			}
			return guard.Check(object)
		})
		fmt.Printf("[%s] serving shard %d of %d\n", ep.Addr(), shardID, shardN)
	}

	// Self-grading observability plane: an in-process aggregator samples
	// this node's own recorder on a ticker, and an SLO engine grades the
	// derived series. A replica sees its own turnaround, not the client
	// round trip, so the grade covers execution latency and served-request
	// volume; /slo serves the rolling evaluation.
	var sloEng *obsplane.Engine
	stopPlane := func() {}
	var introOpts []introspect.Option
	if rep.slo != "" {
		spec, width, err := cliflag.SLO(rep.slo)
		if err != nil {
			node.Leave()
			return err
		}
		agg := obsplane.NewAggregator(width, 512)
		agg.Attach(ep.Addr(), node.TraceSnapshot)
		sloEng = obsplane.NewEngine(agg.Store(), spec)
		sloEng.SetSeries(obsplane.SeriesExecMicros, obsplane.SeriesServed, obsplane.SeriesBad)
		stopPlane = agg.Start(rep.scrapeEvery)
		introOpts = append(introOpts,
			introspect.WithJSON("/slo", func() any { return sloEng.Status() }))
		fmt.Printf("[%s] SLO self-grading on (%s), sampling every %v\n", ep.Addr(), spec.Raw, rep.scrapeEvery)
	}
	defer stopPlane()

	ctrl, stopCtrl, err := startController(node, ep, pol, sloEng)
	if err != nil {
		node.Leave()
		return err
	}
	defer stopCtrl()
	if ctrl != nil {
		introOpts = append(introOpts,
			introspect.WithJSON("/policy", func() any { return ctrl.Status() }))
	}
	introOpts = append(introOpts, introspect.WithGauges(detectorGauges(node)),
		introspect.WithGauges(wireGauges(ep, cw)))
	if sharded {
		// A constant info gauge labels every scrape of this node with its
		// shard, so the aggregator's merged exposition separates the groups.
		info := fmt.Sprintf("versadep_shard_info{shard=\"%d\"}", shardID)
		introOpts = append(introOpts, introspect.WithGauges(func() map[string]float64 {
			return map[string]float64{info: 1}
		}))
	}
	closeIntro, err := serveIntrospect(intro, node.TraceSnapshot, introOpts...)
	if err != nil {
		node.Leave()
		return err
	}
	defer closeIntro()
	fmt.Printf("[%s] replica up (%s) at %s, seeds=%v\n",
		ep.Addr(), style, ep.BoundAddr(), seeds)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(5 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-sig:
			fmt.Printf("[%s] shutting down\n", ep.Addr())
			if traceDump {
				fmt.Printf("[%s] trace:\n%s\n", ep.Addr(), node.TraceSnapshot().JSON())
			}
			node.Leave()
			return nil
		case <-ticker.C:
			st := node.Engine().StatsSnapshot()
			v, err := node.Member().View()
			if err == gcs.ErrStopped {
				// A retirement directive made this replica leave the
				// group; the process is done.
				fmt.Printf("[%s] retired gracefully\n", ep.Addr())
				if traceDump {
					fmt.Printf("[%s] trace:\n%s\n", ep.Addr(), node.TraceSnapshot().JSON())
				}
				return nil
			}
			if err != nil {
				continue
			}
			fmt.Printf("[%s] view=%v style=%s role=%s synced=%v executed=%d logged=%d ckpts=%d\n",
				ep.Addr(), v.Members, st.Style, st.Role, st.Synced,
				st.RequestsExecuted, st.RequestsLogged, st.Checkpoints)
		}
	}
}

func runClient(wire transport.MultiEndpoint, cw *chaoswire.Endpoint, members []string, shardMembers string, requests int, traceDump bool, intro string) error {
	_ = cw // chaos counters are scraped from replicas; the client just perturbs
	var client *replicator.ClientNode
	sharded := shardMembers != ""
	if sharded {
		// The sharded client spans every group: one endpoint, one ORB, a
		// router underneath mapping each object to its shard's group. The
		// deployment is fixed from the flag, so the map never changes and
		// Fetch just returns the same epoch-1 layout.
		groups, err := cliflag.ShardMembers(shardMembers)
		if err != nil {
			_ = wire.Close()
			return err
		}
		m := shard.NewMap(shard.DefaultVnodes, groups...)
		client = replicator.StartShardedClient(wire, replicator.ShardedClientConfig{
			Fetch:   func() *shard.Map { return m },
			Model:   vtime.DefaultCostModel(),
			Timeout: 2 * time.Second,
			Retries: 10,
		})
		fmt.Printf("sharded client over %d shards\n", len(groups))
	} else {
		if len(members) == 0 {
			_ = wire.Close()
			return fmt.Errorf("-members or -shard-members is required for the client role")
		}
		client = replicator.StartClient(wire, replicator.ClientConfig{
			Members: members,
			Model:   vtime.DefaultCostModel(),
			Timeout: 2 * time.Second,
			Retries: 10,
		})
	}
	defer client.Stop()
	closeIntro, err := serveIntrospect(intro, client.TraceSnapshot)
	if err != nil {
		return err
	}
	defer closeIntro()

	start := time.Now()
	var last int64
	for i := 1; i <= requests; i++ {
		t0 := time.Now()
		object := "Bench"
		if sharded {
			// Spread the keyspace so the ring routes requests to every
			// shard; sharded replicas serve any object via their default
			// servant, gated by the placement guard.
			object = fmt.Sprintf("bench-%03d", i%64)
		}
		out, err := client.Invoke(object, "work", []interface{}{[]byte("x")}, 0)
		if err != nil {
			return fmt.Errorf("request %d: %w", i, err)
		}
		last = out.Results[0].Int
		if i%10 == 0 || i == requests {
			fmt.Printf("request %d -> counter=%d (%.2fms wall)\n",
				i, last, float64(time.Since(t0).Microseconds())/1000)
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("done: %d requests in %v (%.1f req/s wall), final counter %d\n",
		requests, elapsed.Round(time.Millisecond),
		float64(requests)/elapsed.Seconds(), last)
	if traceDump {
		fmt.Printf("trace:\n%s\n", client.TraceSnapshot().JSON())
	}
	return nil
}

// runAggregator is the cluster observability role: it scrapes every
// target's introspection endpoint on a ticker (validating each /metrics
// exposition), merges the per-node snapshots, and serves the cluster
// view — merged /metrics and /trace, stitched cross-node request
// timelines on /timelines, scrape health on /aggregator, and (when -slo
// is set) the rolling SLO evaluation of the cluster-derived series on
// /slo.
func runAggregator(bind, scrape, sloSpec string, every time.Duration) error {
	if bind == "" {
		return fmt.Errorf("-bind is required for the aggregator role")
	}
	if scrape == "" {
		return fmt.Errorf("-scrape is required for the aggregator role (name=http://host:port,...)")
	}
	var spec obsplane.Spec
	width := int64(time.Second)
	if sloSpec != "" {
		var err error
		if spec, width, err = cliflag.SLO(sloSpec); err != nil {
			return err
		}
	}
	agg := obsplane.NewAggregator(width, 512)
	// Targets may carry a shard annotation ("name@shard=url"), labeling the
	// merged exposition per shard in a sharded deployment.
	shardOf := make(map[string]string)
	for _, pair := range strings.Split(scrape, ",") {
		name, url, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return fmt.Errorf("bad scrape target %q (want name[@shard]=http://host:port)", pair)
		}
		if base, shard, ok := strings.Cut(name, "@"); ok {
			if shard == "" {
				return fmt.Errorf("bad scrape target %q (empty shard annotation)", pair)
			}
			name = base
			shardOf[name] = shard
		}
		agg.AddTarget(name, url)
	}
	stop := agg.Start(every)
	defer stop()

	opts := []introspect.Option{
		introspect.WithJSON("/timelines", func() any { return agg.Timelines() }),
		introspect.WithJSON("/aggregator", func() any { return agg.Status() }),
	}
	if len(shardOf) > 0 {
		// One up-gauge per annotated target: the merged exposition then
		// separates the shards by label, and a shard whose scrapes fail
		// shows up as versadep_shard_up 0 rather than silently vanishing.
		opts = append(opts, introspect.WithGauges(func() map[string]float64 {
			g := make(map[string]float64, len(shardOf))
			for _, t := range agg.Status().Targets {
				shard, ok := shardOf[t.Name]
				if !ok {
					continue
				}
				up := 0.0
				if t.LastError == "" && t.LastScrapeUnixNanos > 0 {
					up = 1
				}
				g[fmt.Sprintf("versadep_shard_up{shard=%q,node=%q}", shard, t.Name)] = up
			}
			return g
		}))
	}
	if sloSpec != "" {
		eng := obsplane.NewEngine(agg.Store(), spec)
		opts = append(opts, introspect.WithJSON("/slo", func() any { return eng.Status() }))
	}
	srv, err := introspect.Start(bind, agg.Merged, opts...)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("aggregator at http://%s/ (/metrics, /trace, /timelines, /slo, /aggregator), scraping every %v\n",
		srv.Addr(), every)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("aggregator shutting down")
	return nil
}
