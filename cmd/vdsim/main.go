// Command vdsim runs a single versatile-dependability scenario from flags:
// a replica group, a set of closed-loop clients, and optional mid-run
// events (crash a replica, switch the replication style), printing the
// measured latency/bandwidth/fault-tolerance outcome.
//
// Examples:
//
//	vdsim -style active -replicas 3 -clients 2 -requests 500
//	vdsim -style warm-passive -replicas 3 -crash-primary-at 200
//	vdsim -style warm-passive -switch-to active -switch-at 250
//	vdsim -style active -replicas 2 -grow-at 100 -retire-at 300
//	vdsim -style active -clients 4 -adapt rate=2000:500
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"versadep/internal/cliflag"
	"versadep/internal/experiment"
	"versadep/internal/introspect"
	"versadep/internal/monitor"
	"versadep/internal/obsplane"
	"versadep/internal/policy"
	"versadep/internal/replication"
	"versadep/internal/trace"
	"versadep/internal/trace/span"
	"versadep/internal/vtime"
)

func main() {
	var (
		styleName = flag.String("style", "active", "replication style: active, warm-passive, cold-passive")
		replicas  = flag.Int("replicas", 3, "number of replicas")
		clients   = flag.Int("clients", 1, "number of closed-loop clients")
		requests  = flag.Int("requests", 500, "requests per client")
		ckpt      = flag.Int("checkpoint-every", 5, "checkpoint frequency (passive styles)")
		seed      = flag.Uint64("seed", 1, "deterministic seed")
		switchTo  = flag.String("switch-to", "", "style to switch to mid-run")
		switchAt  = flag.Int("switch-at", 0, "request index at which to switch")
		crashAt   = flag.Int("crash-primary-at", 0, "request index at which to crash the rank-0 replica")
		traceDump = flag.Bool("trace", false, "dump the merged trace-counter registry as JSON on exit")
		spanDump  = flag.Int("spans", 0, "print causal span timelines for the first N request traces plus all protocol phases")
		growAt    = flag.Int("grow-at", 0, "request index at which to spawn one fresh replica (live join + state transfer)")
		retireAt  = flag.Int("retire-at", 0, "request index at which to gracefully retire the highest-ranked replica")
		adapt     = flag.String("adapt", "", "comma-separated policy specs driving an autonomic controller, e.g. rate=2000:500,avail=0.995:5,bwcap=3.0 (see internal/policy)")
		cooldown  = flag.Duration("adapt-cooldown", 200*time.Millisecond, "per-knob cooldown between controller actuations")
		stateB    = flag.Int("state-bytes", 0, "application state size in bytes (0 = harness default; sets the joiner transfer volume)")
		xferChunk = flag.Int("transfer-chunk", 0, "joiner state-transfer chunk size in bytes (0 = engine default)")
		xferRetry = flag.Duration("transfer-retry", 0, "transfer retry tick for stalled joiners (0 = engine default)")
		detector  = flag.String("detector", "", "failure detector: \"phi\" or \"phi:THRESH\" (accrual suspicion) or \"timeout\" (fixed silence window only); default = group default")
		chaosArg  = flag.String("chaos", "", "inject a deterministic chaos schedule during the run, \"SPEC[:SEED]\" (e.g. \"all:7\" or \"drop=0.1,partition=1\"; see internal/faults/chaos)")
		chaosFor  = flag.Duration("chaos-for", 500*time.Millisecond, "chaos schedule window (faults injected and healed inside it)")
		intro     = flag.String("introspect", "", "host:port for a live introspection endpoint over the running simulation (/metrics, /trace, and /slo when -slo is set)")
		sloSpec   = flag.String("slo", "", "grade the run against an SLO spec, e.g. \"p99<10ms,avail>0.999:25ms\" (windows are virtual time)")
		timelines = flag.Int("timelines", 0, "print the first N stitched cross-node request timelines")
		reservoir = flag.Int("reservoir", 0, "latency reservoir capacity: raw samples kept for exact percentiles before uniform subsampling kicks in (0 = default 2048; larger = exacter tails on long runs, more memory)")
		shards    = flag.Int("shards", 1, "shard the object space over N independent replica groups (active replication, -replicas each) and drive an open-loop sharded client across them; >1 switches to sharded mode and ignores the mid-run event flags")
	)
	flag.Parse()
	cfg := runConfig{
		style: *styleName, replicas: *replicas, clients: *clients,
		requests: *requests, ckpt: *ckpt, seed: *seed,
		switchTo: *switchTo, switchAt: *switchAt, crashAt: *crashAt,
		traceDump: *traceDump, spanDump: *spanDump,
		growAt: *growAt, retireAt: *retireAt,
		adapt: *adapt, cooldown: *cooldown,
		stateBytes: *stateB, transferChunk: *xferChunk, transferRetry: *xferRetry,
		detector: *detector, chaos: *chaosArg, chaosFor: *chaosFor,
		introspect: *intro, slo: *sloSpec, timelines: *timelines, reservoir: *reservoir,
		shards: *shards,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "vdsim:", err)
		os.Exit(1)
	}
}

type runConfig struct {
	style             string
	replicas, clients int
	requests, ckpt    int
	seed              uint64
	switchTo          string
	switchAt, crashAt int
	traceDump         bool
	spanDump          int
	growAt, retireAt  int
	adapt             string
	cooldown          time.Duration
	stateBytes        int
	transferChunk     int
	transferRetry     time.Duration
	detector          string
	chaos             string
	chaosFor          time.Duration
	introspect        string
	slo               string
	timelines         int
	reservoir         int
	shards            int
}

func run(cfg runConfig) error {
	styleName, replicas, clients, requests := cfg.style, cfg.replicas, cfg.clients, cfg.requests
	ckpt, seed, switchTo := cfg.ckpt, cfg.seed, cfg.switchTo
	switchAt, crashAt, traceDump, spanDump := cfg.switchAt, cfg.crashAt, cfg.traceDump, cfg.spanDump
	style, err := replication.ParseStyle(styleName)
	if err != nil {
		return err
	}
	var target replication.Style
	if switchTo != "" {
		if target, err = replication.ParseStyle(switchTo); err != nil {
			return err
		}
	}

	o := experiment.DefaultOptions()
	o.Requests = requests
	o.Seed = seed
	o.CheckpointEvery = ckpt
	if cfg.stateBytes > 0 {
		o.StateBytes = cfg.stateBytes
	}
	o.TransferChunkBytes = cfg.transferChunk
	o.TransferRetryEvery = cfg.transferRetry
	if cfg.detector != "" {
		phi, err := cliflag.DetectorPhi(cfg.detector)
		if err != nil {
			return err
		}
		o.PhiThreshold = phi
	}

	if cfg.shards > 1 {
		return runSharded(cfg, o)
	}

	var mu sync.Mutex
	var notices []replication.Notice
	observer := func(n replication.Notice) {
		if n.Kind == replication.NoticeRequest {
			return
		}
		mu.Lock()
		notices = append(notices, n)
		mu.Unlock()
	}

	scn, err := experiment.NewScenario(o, style, replicas, clients, observer)
	if err != nil {
		return err
	}
	defer scn.Close()

	fmt.Printf("scenario: %s, %d replicas, %d clients, %d requests/client\n",
		style, replicas, clients, requests)

	var chaosDone <-chan struct{}
	if cfg.chaos != "" {
		done, steps, err := scn.Chaos(cfg.chaos, cfg.chaosFor)
		if err != nil {
			return err
		}
		chaosDone = done
		fmt.Printf("chaos schedule (%d steps over %v):\n", len(steps), cfg.chaosFor)
		for _, s := range steps {
			fmt.Printf("  %s\n", s)
		}
	}

	// SLO grading: every reply lands in a windowed store at its virtual
	// completion instant; the engine evaluates the spec per window and the
	// whole run at the end.
	var sloEng *obsplane.Engine
	var sloStore *obsplane.Store
	var sloSpec obsplane.Spec
	if cfg.slo != "" {
		var width int64
		if sloSpec, width, err = cliflag.SLO(cfg.slo); err != nil {
			return err
		}
		sloStore = obsplane.NewStore(width, 512)
		sloEng = obsplane.NewEngine(sloStore, sloSpec)
	}

	if cfg.introspect != "" {
		var iOpts []introspect.Option
		if sloEng != nil {
			iOpts = append(iOpts, introspect.WithJSON("/slo", func() any { return sloEng.Status() }))
		}
		srv, err := introspect.Start(cfg.introspect, scn.TraceSnapshot, iOpts...)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("introspection at http://%s/ (/metrics, /trace%s)\n",
			srv.Addr(), map[bool]string{true: ", /slo"}[sloEng != nil])
	}

	var ctrl *policy.Controller
	if cfg.adapt != "" {
		policies, err := cliflag.Policies(cfg.adapt)
		if err != nil {
			return err
		}
		sample := scn.Sensors()
		if sloEng != nil {
			sample = sloEng.Signals(sample)
		}
		ctrl = policy.New(policy.Config{
			Policies: policies,
			Sample:   sample,
			Actuator: scn.Actuator(),
			Cooldown: cfg.cooldown,
			OnEntry: func(e policy.Entry) {
				if e.Err != "" {
					fmt.Printf("  [policy %s] %s %s failed: %s\n", e.Policy, e.Knob, e.Action, e.Err)
					return
				}
				fmt.Printf("  [policy %s] %s: %s (%s)\n", e.Policy, e.Knob, e.Action, e.Reason)
			},
		})
	}

	lat := monitor.NewLatencyMonitor(cfg.reservoir)
	err = scn.RunClosedLoop(func(i int, vt vtime.Time, rtt vtime.Duration) {
		lat.Record(rtt)
		if sloStore != nil {
			sloStore.Observe(obsplane.SeriesLatencyMicros, int64(vt), rtt.Microseconds())
			sloStore.Observe(obsplane.SeriesGood, int64(vt), 1)
		}
		if switchAt > 0 && i == switchAt && target != 0 {
			fmt.Printf("  [req %d] switching to %s\n", i, target)
			scn.Switch(target, vt)
		}
		if crashAt > 0 && i == crashAt {
			fmt.Printf("  [req %d] crashing rank-0 replica\n", i)
			scn.CrashPrimary()
		}
		if cfg.growAt > 0 && i == cfg.growAt {
			if addr, err := scn.Grow(); err != nil {
				fmt.Printf("  [req %d] grow failed: %v\n", i, err)
			} else {
				fmt.Printf("  [req %d] spawned %s (live join + state transfer)\n", i, addr)
			}
		}
		if cfg.retireAt > 0 && i == cfg.retireAt {
			if err := scn.Retire("", vt); err != nil {
				fmt.Printf("  [req %d] retire failed: %v\n", i, err)
			} else {
				fmt.Printf("  [req %d] retiring highest-ranked replica\n", i)
			}
		}
		// Step the controller at a coarse cadence so each step sees fresh
		// rate and tail-latency samples rather than per-request noise.
		if ctrl != nil && i > 0 && i%25 == 0 {
			ctrl.Step()
		}
	})
	if err != nil {
		return err
	}
	if chaosDone != nil {
		<-chaosDone // let the schedule finish its heal-all before reporting
	}
	time.Sleep(100 * time.Millisecond)

	st := lat.Stats()
	fmt.Printf("\nresults over %d requests:\n", st.Count)
	fmt.Printf("  latency  mean %.1fµs  jitter %.1fµs  p99 %.1fµs\n",
		st.Mean.Seconds()*1e6, st.Jitter.Seconds()*1e6, st.P99.Seconds()*1e6)
	fmt.Printf("  bandwidth %.3f MB/s\n", scn.BandwidthMBs())
	fmt.Printf("  final style %s, faults tolerated %d\n", scn.Style(), len(scn.Members())-1)

	if sloEng != nil {
		overall := sloEng.Overall()
		verdict := "MET"
		for _, ob := range overall.Objectives {
			if !ob.Compliant {
				verdict = "VIOLATED"
			}
		}
		fmt.Printf("\nSLO %s: %s\n", sloSpec.Raw, verdict)
		fmt.Printf("  attainment %.4f  burn %.2f  peak-window burn %.2f\n",
			overall.Attainment, overall.BurnRate, overall.PeakBurnRate)
		for _, ob := range overall.Objectives {
			fmt.Printf("  %-14s attainment %.4f (target %.4f)\n",
				ob.Objective.Name, ob.Attainment, ob.Objective.Target)
		}
	}

	if cfg.timelines > 0 {
		printStitched(scn.TraceSnapshot(), cfg.timelines)
	}

	if traceDump {
		fmt.Printf("\ntrace:\n%s\n", scn.TraceSnapshot().JSON())
	}
	if spanDump > 0 {
		printSpans(scn.TraceSnapshot(), spanDump)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(notices) > 0 {
		printNotices(notices)
	}
	return nil
}

// runSharded drives the sharded-deployment scenario: N independent
// active-replicated groups behind a consistent-hash routing tier, one
// open-loop client spraying the object keyspace across them. It prints
// the aggregate throughput and the per-shard load/latency split — the
// scale-out counterpart of the single-group closed-loop run.
func runSharded(cfg runConfig, o experiment.Options) error {
	fmt.Printf("scenario: %d shards × %d replicas (active), %d requests open-loop\n",
		cfg.shards, cfg.replicas, o.Requests)
	p, err := experiment.RunShardPoint(o, cfg.shards, cfg.replicas)
	if err != nil {
		return err
	}
	fmt.Printf("\nresults over %d requests (%d errors):\n", p.Requests, p.Errors)
	fmt.Printf("  aggregate throughput %.1f req/s (virtual)\n", p.ThroughputRPS)
	for _, s := range p.PerShard {
		fmt.Printf("  shard %d: %5d requests  mean %9.1fµs  p99 %9.1fµs\n",
			s.Shard, s.Requests, s.MeanMicros, s.P99Micros)
	}
	if p.Errors > 0 {
		return fmt.Errorf("%d requests failed", p.Errors)
	}
	return nil
}

// printStitched renders the first maxReq stitched cross-node request
// timelines: which nodes each request touched, where it executed, and
// whether it crossed a failover.
func printStitched(snap trace.Snapshot, maxReq int) {
	tls := obsplane.Stitch(snap.Spans)
	fmt.Printf("\nstitched timelines: %d requests\n", len(tls))
	shown := tls
	if len(shown) > maxReq {
		fmt.Printf("  (showing first %d; raise -timelines for more)\n", maxReq)
		shown = shown[:maxReq]
	}
	for _, tl := range shown {
		mark := ""
		if tl.FailedOver {
			mark = "  FAILED-OVER"
		}
		fmt.Printf("  %-24s %8.1fµs  nodes=%s  executed-on=%s%s\n",
			tl.Trace, tl.Duration().Seconds()*1e6,
			strings.Join(tl.Nodes, ","), strings.Join(tl.Executors, ","), mark)
	}
}

// printSpans renders per-request causal timelines (the paper's Figure 3
// round-trip breakdown, reconstructed from spans) for the first maxReq
// request traces, then every protocol-phase trace (switches, failovers,
// checkpoints) in full.
func printSpans(snap trace.Snapshot, maxReq int) {
	spans := snap.Spans
	var reqs, protos []string
	for _, tk := range span.Traces(spans) {
		if strings.HasPrefix(tk, "req:") {
			reqs = append(reqs, tk)
		} else {
			protos = append(protos, tk)
		}
	}
	fmt.Printf("\nspans: %d recorded (%d dropped, %d still open), %d request traces\n",
		len(spans), snap.SpansDropped, snap.SpansOpen, len(reqs))
	if len(reqs) > maxReq {
		fmt.Printf("  (showing first %d request traces; raise -spans for more)\n", maxReq)
		reqs = reqs[:maxReq]
	}
	for _, tk := range reqs {
		printTimeline(spans, tk)
		bd := span.Breakdown(spans, tk)
		comps := make([]string, 0, len(bd))
		for c := range bd {
			comps = append(comps, c)
		}
		sort.Strings(comps)
		fmt.Printf("    breakdown:")
		for _, c := range comps {
			fmt.Printf(" %s=%.1fµs", c, bd[c].Seconds()*1e6)
		}
		fmt.Println()
	}
	for _, tk := range protos {
		printTimeline(spans, tk)
	}
}

func printTimeline(spans []span.Span, tk string) {
	tl := span.Timeline(spans, tk)
	fmt.Printf("  %s\n", tk)
	for _, s := range tl {
		line := fmt.Sprintf("    %-12s %-20s %10s → %-10s %8.1fµs",
			s.Node, s.Name, s.Start, s.End, s.Duration().Seconds()*1e6)
		if s.Comp != "" {
			line += "  [" + s.Comp + "]"
		}
		if s.Note != "" {
			line += "  (" + s.Note + ")"
		}
		if s.Value != 0 {
			line += fmt.Sprintf("  value=%d", s.Value)
		}
		fmt.Println(line)
	}
}

func printNotices(notices []replication.Notice) {
	fmt.Println("\nevents:")
	for _, n := range notices {
		switch n.Kind {
		case replication.NoticeSwitchStart:
			fmt.Printf("  %-10s switch to %s starting at t=%s\n", n.Addr, n.Style, n.VT)
		case replication.NoticeSwitchDone:
			fmt.Printf("  %-10s switch to %s done (delay %.1fµs)\n",
				n.Addr, n.Style, n.Delay.Seconds()*1e6)
		case replication.NoticeFailover:
			fmt.Printf("  %-10s failover complete (recovery %.1fµs)\n",
				n.Addr, n.Delay.Seconds()*1e6)
		case replication.NoticeRetire:
			fmt.Printf("  %-10s retirement directive for %s\n", n.Addr, n.Peer)
		case replication.NoticeView:
			fmt.Printf("  %-10s view change: %d members (%d crashed)\n",
				n.Addr, n.Members, n.Crashed)
		case replication.NoticeCheckpoint:
			// Checkpoints are frequent; summarize only.
		}
	}
}
