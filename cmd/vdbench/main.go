// Command vdbench runs the versadep evaluation harness: it regenerates
// every table and figure of the paper's evaluation (§4) and prints them in
// the paper's format.
//
// Usage:
//
//	vdbench                      # run everything with default options
//	vdbench -exp fig3            # one experiment: fig3 fig4 fig6 fig7
//	                             # table2 fig9 switchdelay
//	vdbench -requests 10000      # the paper's full 10,000-request cycle
//	vdbench -seed 7              # different deterministic seed
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"versadep/internal/experiment"
	"versadep/internal/knobs"
	"versadep/internal/trace"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run: all, fig3, fig4, fig6, fig7, table2, fig9, switchdelay, statetransfer, chaos, slo, shardscale")
		chaosN   = flag.Int("chaos-runs", 20, "seeded runs per chaos campaign (chaos experiment)")
		requests = flag.Int("requests", 0, "requests per client cycle (default harness setting; paper uses 10000)")
		seed     = flag.Uint64("seed", 0, "deterministic seed (default harness setting)")
		replicas = flag.Int("replicas", 3, "max replicas for the fig7 sweep")
		clients  = flag.Int("clients", 5, "max clients for the fig7 sweep")
		traceDmp = flag.Bool("trace", false, "dump each scenario's merged trace registry (counters, histograms, spans) as JSON after it runs")
		benchDir = flag.String("bench-json", "", "directory to write BENCH_*.json perf-trajectory points into (fig3, statetransfer, chaos, slo)")
		sloArg   = flag.String("slo", "", "SLO spec for the slo experiment (default "+experiment.DefaultSLOSpec+")")
	)
	flag.Parse()
	if err := run(*exp, *requests, *seed, *replicas, *clients, *chaosN, *traceDmp, *benchDir, *sloArg); err != nil {
		fmt.Fprintln(os.Stderr, "vdbench:", err)
		os.Exit(1)
	}
}

// writeBenchJSON drops one perf-trajectory point as indented JSON.
func writeBenchJSON(dir, name string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func run(exp string, requests int, seed uint64, maxReplicas, maxClients, chaosRuns int, traceDump bool, benchDir, sloSpec string) error {
	o := experiment.DefaultOptions()
	if requests > 0 {
		o.Requests = requests
	}
	if seed > 0 {
		o.Seed = seed
	}
	if traceDump {
		o.TraceSink = func(label string, snap trace.Snapshot) {
			fmt.Printf("\ntrace[%s]:\n%s\n", label, snap.JSON())
		}
	}

	want := func(name string) bool { return exp == "all" || strings.EqualFold(exp, name) }
	ran := false

	if want("fig3") {
		ran = true
		res, err := experiment.RunFig3(o)
		if err != nil {
			return err
		}
		fmt.Println(experiment.RenderFig3(res))
		if benchDir != "" {
			point := struct {
				MeanRTTMicros float64 `json:"mean_rtt_us"`
				Requests      int     `json:"requests"`
			}{res.MeanRTT.Seconds() * 1e6, res.Requests}
			if err := writeBenchJSON(benchDir, "BENCH_orb_rtt.json", point); err != nil {
				return err
			}
		}
	}
	if want("fig4") {
		ran = true
		rows, err := experiment.RunFig4(o)
		if err != nil {
			return err
		}
		fmt.Println(experiment.RenderFig4(rows))
	}
	if want("fig6") {
		ran = true
		res, err := experiment.RunFig6(o,
			experiment.DefaultFig6Profile(o.Requests),
			experiment.DefaultFig6Thresholds())
		if err != nil {
			return err
		}
		fmt.Println(experiment.RenderFig6(res, 24))
	}

	var points []experiment.Fig7Point
	needFig7 := want("fig7") || want("table2") || want("fig9")
	if needFig7 {
		ran = true
		var err error
		points, err = experiment.RunFig7(o, maxReplicas, maxClients)
		if err != nil {
			return err
		}
	}
	if want("fig7") {
		fmt.Println(experiment.RenderFig7(points))
	}
	if want("table2") {
		req := knobs.PaperRequirements()
		rows, infeasible := experiment.RunTable2(points, req, maxClients)
		fmt.Println(experiment.RenderTable2(rows, infeasible, req))
	}
	if want("fig9") {
		fmt.Println(experiment.RenderFig9(experiment.RunFig9(points)))
	}
	if want("switchdelay") {
		ran = true
		res, err := experiment.RunSwitchDelay(o, 3)
		if err != nil {
			return err
		}
		fmt.Println(experiment.RenderSwitchDelay(res))
	}
	if want("statetransfer") {
		ran = true
		so := o
		so.StateBytes = 64 * 1024
		res, err := experiment.RunStateTransfer(so)
		if err != nil {
			return err
		}
		fmt.Println(experiment.RenderStateTransfer(res))
		if benchDir != "" {
			if err := writeBenchJSON(benchDir, "BENCH_state_transfer.json", res); err != nil {
				return err
			}
		}
	}
	// The SLO grading experiment paces its open-loop surge in real time
	// (and its partition scenario heals on a real-time fuse), so like the
	// chaos campaign it runs only when asked for.
	if strings.EqualFold(exp, "slo") {
		ran = true
		res, err := experiment.RunSLOBench(o, sloSpec)
		if err != nil {
			return err
		}
		fmt.Println(experiment.RenderSLO(res))
		if benchDir != "" {
			if err := writeBenchJSON(benchDir, "BENCH_slo.json", res); err != nil {
				return err
			}
		}
		if !res.Passed {
			return fmt.Errorf("clean surge violated the SLO (attainment %.4f)", res.Attainment)
		}
	}
	// The shard-scale sweep drives a few hundred thousand virtual-time
	// requests across 1/2/4 shards; it runs only when asked for, like the
	// other heavyweight experiments.
	if strings.EqualFold(exp, "shardscale") {
		ran = true
		res, err := experiment.RunShardScale(o)
		if err != nil {
			return err
		}
		fmt.Println(experiment.RenderShardScale(res))
		if benchDir != "" {
			if err := writeBenchJSON(benchDir, "BENCH_shard.json", res); err != nil {
				return err
			}
		}
		if !res.Passed {
			return fmt.Errorf("4-shard speedup %.2f× below the 2.5× scale-out bar", res.Speedup4)
		}
	}
	// The chaos campaign is real-time (fault schedules, detector timing)
	// and so runs only when asked for, not under "all" with the virtual-
	// time paper figures.
	if strings.EqualFold(exp, "chaos") {
		ran = true
		co := o
		co.StateBytes = 2048
		chaosSeed := seed
		if chaosSeed == 0 {
			chaosSeed = 7
		}
		res, report, err := experiment.RunChaosBench(co, chaosRuns, chaosSeed)
		if err != nil {
			return err
		}
		fmt.Println(experiment.RenderChaos(res, report))
		if benchDir != "" {
			if err := writeBenchJSON(benchDir, "BENCH_chaos.json", res); err != nil {
				return err
			}
		}
		if !res.Passed {
			return fmt.Errorf("chaos campaign failed %d invariant checks", res.Violations)
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
