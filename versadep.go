// Package versadep is a Go implementation of versatile dependability: a
// replication middleware whose fault-tolerance/performance/resource
// trade-offs are tunable — before deployment and at runtime — through
// low-level knobs (replication style, number of replicas, checkpointing
// frequency) and high-level knobs (scalability, availability).
//
// It reproduces the system described in "Architecting and Implementing
// Versatile Dependability" (Dumitraş, Srivastava, Narasimhan; DSN 2004 —
// the MEAD project), including every substrate the paper builds on: a
// group-communication toolkit with Spread's four delivery guarantees and
// virtual-synchrony membership, a miniature ORB with a GIOP-like wire
// protocol, a transparent interception layer, active / warm-passive /
// cold-passive replication with the runtime style-switch protocol of the
// paper's Figure 5, and the knob/policy framework of its §4.3.
//
// The quickest way in:
//
//	sys := versadep.NewSystem()
//	defer sys.Close()
//
//	group, _ := sys.StartGroup("bank", 3, versadep.GroupConfig{
//		Style: versadep.WarmPassive,
//		NewApp: func() versadep.Application { return newBankApp() },
//	})
//	client, _ := sys.NewClient(group)
//	reply, _ := client.Invoke("Account", "deposit", "alice", 100)
//
//	group.SetStyle(versadep.Active) // the low-level knob, live
//
// Everything runs on an in-memory network fabric with fault injection;
// performance is accounted in deterministic virtual time calibrated to the
// paper's measured component costs (see internal/vtime). A TCP transport
// for live multi-process deployments is available through cmd/vdnode.
package versadep

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"versadep/internal/codec"
	"versadep/internal/interceptor"
	"versadep/internal/knobs"
	"versadep/internal/orb"
	"versadep/internal/replication"
	"versadep/internal/replicator"
	"versadep/internal/simnet"
	"versadep/internal/vtime"
)

// Style is a replication style (the paper's principal low-level knob).
type Style = replication.Style

// Replication styles.
const (
	// Active replication: every replica executes every request.
	Active = replication.Active
	// WarmPassive replication: a primary executes; backups apply
	// periodic checkpoints and replay logs at failover.
	WarmPassive = replication.WarmPassive
	// ColdPassive replication: backups stay cold; failover pays a
	// cold-start cost before restore and replay.
	ColdPassive = replication.ColdPassive
	// SemiActive replication (Delta-4 XPA leader-follower): every
	// replica executes, only the leader replies — active's instant
	// failover at passive-like reply bandwidth.
	SemiActive = replication.SemiActive
)

// Servant is a deterministic application object (see orb.Servant).
type Servant = orb.Servant

// Value is the dynamic argument/result type of invocations.
type Value = codec.Value

// Application is a replicated application: deterministic servant logic
// plus process-level state capture, the unit of replication in the paper
// (§3.1).
type Application interface {
	Servant
	replication.Checkpointable
}

// Errors.
var (
	// ErrClosed reports use of a closed system.
	ErrClosed = errors.New("versadep: system closed")
	// ErrUnknownGroup reports a client created for a foreign group.
	ErrUnknownGroup = errors.New("versadep: unknown group")
)

// System is a simulated deployment: an in-memory fabric hosting replica
// groups and clients.
type System struct {
	mu      sync.Mutex
	net     *simnet.Network
	model   vtime.CostModel
	seed    uint64
	groups  map[string]*Group
	clients int
	closed  bool
}

// SystemOption configures a System.
type SystemOption func(*System)

// WithCostModel overrides the calibrated virtual-time cost model.
func WithCostModel(m vtime.CostModel) SystemOption {
	return func(s *System) { s.model = m }
}

// WithSeed sets the deterministic randomness seed.
func WithSeed(seed uint64) SystemOption {
	return func(s *System) { s.seed = seed }
}

// NewSystem creates an empty deployment.
func NewSystem(opts ...SystemOption) *System {
	s := &System{
		model:  vtime.DefaultCostModel(),
		groups: make(map[string]*Group),
		seed:   1,
	}
	for _, o := range opts {
		o(s)
	}
	s.net = simnet.New(simnet.WithCostModel(s.model), simnet.WithSeed(s.seed))
	return s
}

// Close shuts the whole deployment down.
func (s *System) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	groups := make([]*Group, 0, len(s.groups))
	for _, g := range s.groups {
		groups = append(groups, g)
	}
	s.mu.Unlock()
	for _, g := range groups {
		g.stopAll()
	}
	s.net.Close()
}

// GroupConfig parameterizes a replica group.
type GroupConfig struct {
	// Style is the initial replication style (default Active).
	Style Style
	// CheckpointEvery is the checkpointing frequency in requests for the
	// passive styles (default 5).
	CheckpointEvery int
	// NewApp constructs one application instance per replica. Required.
	NewApp func() Application
	// Objects maps object names to accessors on the application; when
	// empty the application is registered under "App".
	Objects []string
	// Adapt, if set, is the runtime adaptation policy evaluated on the
	// replicated state after every request.
	Adapt replication.AdaptPolicy
	// Observer, if set, receives replication-engine notices.
	Observer func(replication.Notice)
}

// Group is a running replica group.
type Group struct {
	sys  *System
	name string
	cfg  GroupConfig

	mu    sync.Mutex
	nodes []*replicator.ReplicaNode
	apps  []Application
	gone  []bool // crashed or gracefully removed
	next  int
}

// StartGroup boots a replica group with n members.
func (s *System) StartGroup(name string, n int, cfg GroupConfig) (*Group, error) {
	if cfg.NewApp == nil {
		return nil, errors.New("versadep: GroupConfig.NewApp is required")
	}
	if n < 1 {
		return nil, errors.New("versadep: group needs at least one replica")
	}
	if cfg.Style == 0 {
		cfg.Style = Active
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 5
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if _, dup := s.groups[name]; dup {
		s.mu.Unlock()
		return nil, fmt.Errorf("versadep: group %q already exists", name)
	}
	g := &Group{sys: s, name: name, cfg: cfg}
	s.groups[name] = g
	s.mu.Unlock()

	for i := 0; i < n; i++ {
		if _, err := g.AddReplica(); err != nil {
			g.stopAll()
			return nil, err
		}
	}
	return g, nil
}

// AddReplica grows the group by one member at runtime (the #replicas
// knob moving up); the joiner receives a state transfer automatically.
func (g *Group) AddReplica() (string, error) {
	g.mu.Lock()
	idx := g.next
	g.next++
	seeds := g.liveAddrsLocked()
	g.mu.Unlock()

	addr := fmt.Sprintf("%s/replica-%d", g.name, idx)
	ep, err := g.sys.net.Endpoint(addr)
	if err != nil {
		return "", err
	}
	app := g.cfg.NewApp()
	node := replicator.StartReplica(ep, replicator.ReplicaConfig{
		Seeds: seeds,
		Replication: replication.Config{
			Style:           g.cfg.Style,
			CheckpointEvery: g.cfg.CheckpointEvery,
			Model:           g.sys.model,
			State:           app,
			Adapt:           g.cfg.Adapt,
			Observer:        g.cfg.Observer,
		},
	})
	objects := g.cfg.Objects
	if len(objects) == 0 {
		objects = []string{"App"}
	}
	for _, o := range objects {
		node.Register(o, app)
	}

	g.mu.Lock()
	g.nodes = append(g.nodes, node)
	g.apps = append(g.apps, app)
	g.gone = append(g.gone, false)
	want := len(g.liveAddrsLocked())
	g.mu.Unlock()

	if err := g.waitSize(want); err != nil {
		return "", err
	}
	return addr, nil
}

// liveAddrsLocked lists addresses of live members (g.mu held).
func (g *Group) liveAddrsLocked() []string {
	var out []string
	for i, n := range g.nodes {
		if !g.gone[i] && !g.sys.net.Crashed(n.Addr()) {
			out = append(out, n.Addr())
		}
	}
	return out
}

// liveNodesLocked lists live nodes (g.mu held).
func (g *Group) liveNodesLocked() []*replicator.ReplicaNode {
	var out []*replicator.ReplicaNode
	for i, n := range g.nodes {
		if !g.gone[i] && !g.sys.net.Crashed(n.Addr()) {
			out = append(out, n)
		}
	}
	return out
}

// Members lists the group's live member addresses.
func (g *Group) Members() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.liveAddrsLocked()
}

// waitSize blocks until every live member reports a view of the given
// size.
func (g *Group) waitSize(want int) error {
	deadline := time.Now().Add(10 * time.Second)
	for {
		g.mu.Lock()
		nodes := g.liveNodesLocked()
		g.mu.Unlock()
		ok, live := 0, len(nodes)
		for _, n := range nodes {
			if v, err := n.Member().View(); err == nil && len(v.Members) == want {
				ok++
			}
		}
		if live > 0 && ok == live {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("versadep: group %q did not converge to %d members", g.name, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// SetStyle switches the group's replication style at runtime using the
// protocol of the paper's Figure 5. It returns immediately; the switch
// completes through the agreed stream.
func (g *Group) SetStyle(target Style) {
	g.mu.Lock()
	nodes := g.liveNodesLocked()
	g.mu.Unlock()
	if len(nodes) > 0 {
		nodes[0].Engine().RequestSwitch(target, 0)
	}
}

// Style reports the current style at the first live replica.
func (g *Group) Style() Style {
	g.mu.Lock()
	nodes := g.liveNodesLocked()
	g.mu.Unlock()
	if len(nodes) > 0 {
		return nodes[0].Engine().Style()
	}
	return 0
}

// SetCheckpointEvery retunes the checkpointing-frequency knob at runtime;
// the new value travels the group's agreed stream so every replica adopts
// it at the same point.
func (g *Group) SetCheckpointEvery(every int) {
	g.mu.Lock()
	nodes := g.liveNodesLocked()
	g.mu.Unlock()
	if len(nodes) > 0 {
		nodes[0].Engine().SetCheckpointEvery(every, 0)
	}
}

// RemoveReplica gracefully retires the i-th replica (the #replicas knob
// moving down): it announces a leave, the view reconfigures, and the
// process stops.
func (g *Group) RemoveReplica(i int) error {
	g.mu.Lock()
	if i < 0 || i >= len(g.nodes) {
		g.mu.Unlock()
		return fmt.Errorf("versadep: no replica %d", i)
	}
	if g.gone[i] {
		g.mu.Unlock()
		return fmt.Errorf("versadep: replica %d already gone", i)
	}
	node := g.nodes[i]
	g.gone[i] = true
	g.mu.Unlock()
	node.Leave()
	return nil
}

// Crash kills the i-th replica (process crash fault). The group's
// membership protocol detects it and fails over if needed.
func (g *Group) Crash(i int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if i < 0 || i >= len(g.nodes) {
		return fmt.Errorf("versadep: no replica %d", i)
	}
	g.gone[i] = true
	g.sys.net.Crash(g.nodes[i].Addr())
	return nil
}

// App returns the i-th replica's application instance (for state
// inspection in tests and examples).
func (g *Group) App(i int) Application {
	g.mu.Lock()
	defer g.mu.Unlock()
	if i < 0 || i >= len(g.apps) {
		return nil
	}
	return g.apps[i]
}

// Stats returns the i-th replica's engine statistics.
func (g *Group) Stats(i int) (replication.Stats, error) {
	g.mu.Lock()
	node := (*replicator.ReplicaNode)(nil)
	if i >= 0 && i < len(g.nodes) {
		node = g.nodes[i]
	}
	g.mu.Unlock()
	if node == nil {
		return replication.Stats{}, fmt.Errorf("versadep: no replica %d", i)
	}
	return node.Engine().StatsSnapshot(), nil
}

func (g *Group) stopAll() {
	g.mu.Lock()
	var nodes []*replicator.ReplicaNode
	for i, n := range g.nodes {
		if !g.gone[i] {
			nodes = append(nodes, n)
		}
	}
	g.mu.Unlock()
	for _, n := range nodes {
		n.Stop()
	}
}

// Client is a replication-transparent client of a group: its invocations
// travel the intercepted path (group-ordered requests, filtered replies)
// while the code looks like plain RPC.
type Client struct {
	node *replicator.ClientNode
	mu   sync.Mutex
	vt   vtime.Time
}

// ClientOption configures a client.
type ClientOption func(*replicator.ClientConfig)

// WithVoting enables majority voting over n expected replies.
func WithVoting(n int) ClientOption {
	return func(c *replicator.ClientConfig) {
		c.Filter = interceptor.FilterMajority
		c.ExpectedReplies = n
	}
}

// NewClient attaches a client to a group.
func (s *System) NewClient(g *Group, opts ...ClientOption) (*Client, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if s.groups[g.name] != g {
		s.mu.Unlock()
		return nil, ErrUnknownGroup
	}
	s.clients++
	id := s.clients
	s.mu.Unlock()

	ep, err := s.net.Endpoint(fmt.Sprintf("%s/client-%d", g.name, id))
	if err != nil {
		return nil, err
	}
	cfg := replicator.ClientConfig{
		Members: g.Members(),
		Model:   s.model,
		Timeout: 500 * time.Millisecond,
		Retries: 20,
	}
	for _, o := range opts {
		o(&cfg)
	}
	return &Client{node: replicator.StartClient(ep, cfg)}, nil
}

// Reply is the result of an invocation with its virtual timing.
type Reply struct {
	// Results are the returned values.
	Results []Value
	// RTT is the round-trip time in virtual time.
	RTT time.Duration
	// Breakdown holds the per-component virtual costs of the round trip.
	Breakdown vtime.Ledger
}

// Invoke calls an operation on the replicated application, advancing the
// client's virtual clock past the reply. Arguments may be bool, int,
// int64, uint64, float64, string, []byte or Value.
func (c *Client) Invoke(object, op string, args ...interface{}) (*Reply, error) {
	c.mu.Lock()
	vt := c.vt
	c.mu.Unlock()
	out, err := c.node.Invoke(object, op, args, vt)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if out.DoneVT.After(c.vt) {
		c.vt = out.DoneVT
	}
	c.mu.Unlock()
	return &Reply{Results: out.Results, RTT: out.RTT(), Breakdown: out.Ledger}, nil
}

// Close detaches the client.
func (c *Client) Close() { c.node.Stop() }

// ---- re-exported knob helpers ----

// Requirements are the §4.3 constraints for the scalability knob.
type Requirements = knobs.Requirements

// Measurement is an empirically evaluated configuration.
type Measurement = knobs.Measurement

// Config is a low-level knob setting (style, replicas, checkpoint
// frequency) in the paper's Table 2 notation.
type Config = knobs.LowLevel

// PolicyRow is one row of a computed scalability policy (Table 2).
type PolicyRow = knobs.PolicyRow

// PaperRequirements returns the paper's §4.3 requirements (7000 µs,
// 3 MB/s, p = 0.5).
func PaperRequirements() Requirements { return knobs.PaperRequirements() }

// ScalabilityPolicy computes the best configuration per client count —
// the high-level scalability knob of §4.3.
func ScalabilityPolicy(ms []Measurement, maxClients int, req Requirements) ([]PolicyRow, []int) {
	return knobs.ScalabilityPolicy(ms, maxClients, req)
}
