// Quickstart: replicate a key-value service, kill a replica (including
// the primary), and watch the service survive with its state intact.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sync"

	"versadep"
	"versadep/internal/codec"
)

// kvStore is a deterministic replicated key-value application: servant
// logic plus process-level state capture (versadep.Application).
type kvStore struct {
	mu   sync.Mutex
	data map[string]string
}

func newKVStore() versadep.Application {
	return &kvStore{data: make(map[string]string)}
}

func (s *kvStore) Invoke(op string, args []codec.Value) ([]codec.Value, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch op {
	case "put":
		s.data[args[0].Str] = args[1].Str
		return []codec.Value{codec.Int(int64(len(s.data)))}, nil
	case "get":
		v, ok := s.data[args[0].Str]
		return []codec.Value{codec.String(v), codec.Bool(ok)}, nil
	default:
		return nil, fmt.Errorf("unknown op %q", op)
	}
}

func (s *kvStore) State() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := make(map[string]codec.Value, len(s.data))
	for k, v := range s.data {
		m[k] = codec.String(v)
	}
	return codec.EncodeValue(codec.Map(m))
}

func (s *kvStore) Restore(state []byte) error {
	v, err := codec.DecodeValue(state)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data = make(map[string]string, len(v.Map))
	for k, val := range v.Map {
		s.data[k] = val.Str
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys := versadep.NewSystem()
	defer sys.Close()

	// A warm-passive group of three replicas: one primary executing,
	// two backups logging requests and applying checkpoints.
	group, err := sys.StartGroup("kv", 3, versadep.GroupConfig{
		Style:           versadep.WarmPassive,
		CheckpointEvery: 5,
		NewApp:          newKVStore,
	})
	if err != nil {
		return err
	}
	client, err := sys.NewClient(group)
	if err != nil {
		return err
	}
	defer client.Close()

	fmt.Println("== writing through the replicated service ==")
	for i, kv := range [][2]string{
		{"alice", "research"}, {"bob", "operations"}, {"carol", "design"},
		{"dave", "security"}, {"erin", "platform"}, {"frank", "support"},
	} {
		reply, err := client.Invoke("App", "put", kv[0], kv[1])
		if err != nil {
			return err
		}
		fmt.Printf("  put %-6s -> %d entries (rtt %.1fµs)\n",
			kv[0], reply.Results[0].Int, reply.RTT.Seconds()*1e6)
		_ = i
	}

	fmt.Println("\n== crashing the PRIMARY replica ==")
	if err := group.Crash(0); err != nil {
		return err
	}

	// The next request rides through failover: the new primary replays
	// its log and answers with the full state intact.
	reply, err := client.Invoke("App", "get", "erin")
	if err != nil {
		return err
	}
	fmt.Printf("  get erin -> %q (found=%v) after failover\n",
		reply.Results[0].Str, reply.Results[1].Bool)
	fmt.Printf("  surviving members: %v\n", group.Members())

	fmt.Println("\n== switching the group to ACTIVE replication at runtime ==")
	group.SetStyle(versadep.Active)
	reply, err = client.Invoke("App", "put", "grace", "reliability")
	if err != nil {
		return err
	}
	fmt.Printf("  put grace -> %d entries, style now %v\n",
		reply.Results[0].Int, group.Style())

	fmt.Printf("\ntotal virtual round-trip cost of the last request: %.1fµs\n",
		float64(reply.Breakdown.Total().Microseconds()))
	fmt.Println("\nOK — the service survived a primary crash and a live style switch.")
	return nil
}
