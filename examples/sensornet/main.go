// Sensor-network mission modes (the paper's §5 motivating scenario): a
// long-running system that cannot be stopped, running resource-frugal
// warm-passive replication most of the time, and switching to active
// replication only during narrow mission windows where response time and
// instant recovery matter — then dropping back to conserve resources.
//
//	go run ./examples/sensornet
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"versadep"
	"versadep/internal/codec"
)

// telemetryApp aggregates sensor readings deterministically.
type telemetryApp struct {
	mu      sync.Mutex
	count   int64
	sum     int64
	highest int64
}

func newTelemetryApp() versadep.Application { return &telemetryApp{} }

func (a *telemetryApp) Invoke(op string, args []codec.Value) ([]codec.Value, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch op {
	case "report":
		v := args[0].Int
		a.count++
		a.sum += v
		if v > a.highest {
			a.highest = v
		}
		return []codec.Value{codec.Int(a.count)}, nil
	case "summary":
		return []codec.Value{codec.Int(a.count), codec.Int(a.sum), codec.Int(a.highest)}, nil
	default:
		return nil, fmt.Errorf("unknown op %q", op)
	}
}

func (a *telemetryApp) State() []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	e := codec.NewEncoder(24)
	e.PutInt64(a.count)
	e.PutInt64(a.sum)
	e.PutInt64(a.highest)
	return e.Bytes()
}

func (a *telemetryApp) Restore(state []byte) error {
	d := codec.NewDecoder(state)
	count, err := d.Int64()
	if err != nil {
		return err
	}
	sum, err := d.Int64()
	if err != nil {
		return err
	}
	highest, err := d.Int64()
	if err != nil {
		return err
	}
	a.mu.Lock()
	a.count, a.sum, a.highest = count, sum, highest
	a.mu.Unlock()
	return nil
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func waitStyle(g *versadep.Group, want versadep.Style) error {
	deadline := time.Now().Add(5 * time.Second)
	for g.Style() != want {
		if time.Now().After(deadline) {
			return fmt.Errorf("style did not reach %v (still %v)", want, g.Style())
		}
		time.Sleep(10 * time.Millisecond)
	}
	return nil
}

func run() error {
	sys := versadep.NewSystem()
	defer sys.Close()

	group, err := sys.StartGroup("telemetry", 3, versadep.GroupConfig{
		Style:           versadep.WarmPassive, // conservative cruise mode
		CheckpointEvery: 10,
		NewApp:          newTelemetryApp,
	})
	if err != nil {
		return err
	}
	station, err := sys.NewClient(group)
	if err != nil {
		return err
	}
	defer station.Close()

	report := func(phase string, n int, base int64) error {
		var lastRTT time.Duration
		for i := 0; i < n; i++ {
			reply, err := station.Invoke("App", "report", base+int64(i))
			if err != nil {
				return err
			}
			lastRTT = reply.RTT
		}
		fmt.Printf("  [%s] %d readings ingested, last rtt %.1fµs, style %v\n",
			phase, n, lastRTT.Seconds()*1e6, group.Style())
		return nil
	}

	fmt.Println("== cruise mode: warm-passive, conserving the sensor budget ==")
	if err := report("cruise", 30, 100); err != nil {
		return err
	}

	fmt.Println("\n== mission window opens: switch to active for fast response ==")
	group.SetStyle(versadep.Active)
	if err := waitStyle(group, versadep.Active); err != nil {
		return err
	}
	if err := report("mission", 40, 1000); err != nil {
		return err
	}

	fmt.Println("\n== a node is lost during the mission — active masks it instantly ==")
	if err := group.Crash(2); err != nil {
		return err
	}
	if err := report("mission-degraded", 20, 2000); err != nil {
		return err
	}

	fmt.Println("\n== window closes: back to warm-passive to conserve resources ==")
	group.SetStyle(versadep.WarmPassive)
	if err := waitStyle(group, versadep.WarmPassive); err != nil {
		return err
	}
	if err := report("cruise", 20, 3000); err != nil {
		return err
	}

	reply, err := station.Invoke("App", "summary")
	if err != nil {
		return err
	}
	fmt.Printf("\nmission summary: %d readings, sum %d, peak %d — nothing lost across\n",
		reply.Results[0].Int, reply.Results[1].Int, reply.Results[2].Int)
	fmt.Println("two live style switches and a mid-mission node loss.")
	if got, want := reply.Results[0].Int, int64(110); got != want {
		return fmt.Errorf("reading count = %d, want %d", got, want)
	}
	return nil
}
