// The scalability knob (§4.3): empirically measure every configuration of
// the dependability design space, then let the high-level knob choose the
// best configuration per client count under latency, bandwidth and
// fault-tolerance requirements — regenerating the paper's Table 2.
//
//	go run ./examples/scalability
package main

import (
	"fmt"
	"log"

	"versadep/internal/experiment"
	"versadep/internal/knobs"
	"versadep/internal/vtime"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	o := experiment.DefaultOptions()
	o.Requests = 250

	fmt.Println("step 1 — gather the empirical dataset (Figure 7 sweep)...")
	points, err := experiment.RunFig7(o, 3, 5)
	if err != nil {
		return err
	}
	fmt.Print(experiment.RenderFig7(points))

	fmt.Println("\nstep 2 — apply the paper's requirements (§4.3):")
	req := knobs.PaperRequirements()
	rows, infeasible := experiment.RunTable2(points, req, 5)
	fmt.Print(experiment.RenderTable2(rows, infeasible, req))

	fmt.Println("\nstep 3 — what happens with tighter requirements?")
	tight := knobs.Requirements{
		MaxLatency:      2500 * vtime.Microsecond,
		MaxBandwidthMBs: 2.5,
		LatencyWeight:   0.5,
	}
	rows, infeasible = experiment.RunTable2(points, tight, 5)
	fmt.Print(experiment.RenderTable2(rows, infeasible, tight))
	fmt.Println("\nwith hard real-time latency limits the passive styles drop out, and")
	fmt.Println("beyond the feasible load the knob reports that no configuration can")
	fmt.Println("honor the policy — the operator notification of §4.3.")
	return nil
}
