// Adaptive replication (the paper's Figure 6 live): a replica group under
// a load profile that ramps up and back down, with a rate-threshold
// adaptation policy switching the replication style at runtime — warm
// passive while quiet (resource-frugal), active under pressure (fast).
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"versadep/internal/experiment"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	o := experiment.DefaultOptions()
	o.Requests = 600

	// The offered load: think-time phases crossing the thresholds both
	// ways, like Figure 6's ramp.
	profile := experiment.DefaultFig6Profile(o.Requests)
	th := experiment.DefaultFig6Thresholds()
	fmt.Printf("adaptation policy: switch to ACTIVE above %.0f req/s, back to WARM-PASSIVE below %.0f req/s\n\n",
		th.High, th.Low)

	res, err := experiment.RunFig6(o, profile, th)
	if err != nil {
		return err
	}
	fmt.Print(experiment.RenderFig6(res, 30))

	fmt.Println("\nreading the result:")
	fmt.Println("  - while the offered rate is low the group runs warm-passive,")
	fmt.Println("    spending one execution + periodic checkpoints;")
	fmt.Println("  - when the rate crosses the threshold every replica reaches the")
	fmt.Println("    same decision on the replicated state and the group switches to")
	fmt.Println("    active replication through the totally ordered switch protocol;")
	fmt.Println("  - faster replies under load let closed-loop clients submit sooner,")
	fmt.Printf("    which is the throughput gain over static passive: %+.1f%% here,\n", res.GainPct)
	fmt.Println("    +4.1% in the paper (§4.2).")
	return nil
}
