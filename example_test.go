package versadep_test

import (
	"fmt"
	"time"

	"versadep"
	"versadep/internal/codec"
)

// counter is a minimal deterministic replicated application.
type counter struct{ n int64 }

func newCounter() versadep.Application { return &counter{} }

func (c *counter) Invoke(op string, args []codec.Value) ([]codec.Value, error) {
	switch op {
	case "inc":
		c.n++
		return []codec.Value{codec.Int(c.n)}, nil
	case "get":
		return []codec.Value{codec.Int(c.n)}, nil
	}
	return nil, fmt.Errorf("unknown op %q", op)
}

func (c *counter) State() []byte {
	e := codec.NewEncoder(8)
	e.PutInt64(c.n)
	return e.Bytes()
}

func (c *counter) Restore(state []byte) error {
	d := codec.NewDecoder(state)
	n, err := d.Int64()
	if err != nil {
		return err
	}
	c.n = n
	return nil
}

// Replicate an application across three nodes and invoke it through a
// replication-transparent client.
func Example() {
	sys := versadep.NewSystem()
	defer sys.Close()

	group, err := sys.StartGroup("demo", 3, versadep.GroupConfig{
		Style:  versadep.Active,
		NewApp: newCounter,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	client, err := sys.NewClient(group)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer client.Close()

	for i := 0; i < 3; i++ {
		if _, err := client.Invoke("App", "inc"); err != nil {
			fmt.Println(err)
			return
		}
	}
	reply, err := client.Invoke("App", "get")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("counter:", reply.Results[0].Int)
	// Output: counter: 3
}

// Crash the primary of a warm-passive group: the backups replay their
// logs, fail over, and the state survives.
func ExampleGroup_Crash() {
	sys := versadep.NewSystem()
	defer sys.Close()

	group, _ := sys.StartGroup("demo", 3, versadep.GroupConfig{
		Style:           versadep.WarmPassive,
		CheckpointEvery: 3,
		NewApp:          newCounter,
	})
	client, _ := sys.NewClient(group)
	defer client.Close()

	for i := 0; i < 7; i++ {
		if _, err := client.Invoke("App", "inc"); err != nil {
			fmt.Println(err)
			return
		}
	}
	_ = group.Crash(0) // kill the primary

	reply, err := client.Invoke("App", "inc")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("after failover:", reply.Results[0].Int)
	fmt.Println("live replicas:", len(group.Members()))
	// Output:
	// after failover: 8
	// live replicas: 2
}

// Switch the replication style at runtime — the paper's Figure 5
// protocol — without losing a single update.
func ExampleGroup_SetStyle() {
	sys := versadep.NewSystem()
	defer sys.Close()

	group, _ := sys.StartGroup("demo", 2, versadep.GroupConfig{
		Style:  versadep.WarmPassive,
		NewApp: newCounter,
	})
	client, _ := sys.NewClient(group)
	defer client.Close()

	for i := 0; i < 4; i++ {
		if _, err := client.Invoke("App", "inc"); err != nil {
			fmt.Println(err)
			return
		}
	}
	group.SetStyle(versadep.Active)
	for group.Style() != versadep.Active {
		time.Sleep(5 * time.Millisecond)
	}
	reply, _ := client.Invoke("App", "inc")
	fmt.Println("style:", group.Style())
	fmt.Println("counter:", reply.Results[0].Int)
	// Output:
	// style: active
	// counter: 5
}

// Derive a deployment policy with the high-level scalability knob (§4.3
// of the paper): feasible configurations, maximum fault tolerance, then
// minimum cost.
func ExampleScalabilityPolicy() {
	req := versadep.PaperRequirements()
	measurements := []versadep.Measurement{
		{Config: versadep.Config{Style: versadep.Active, Replicas: 3},
			Clients: 1, Latency: 1246 * time.Microsecond, Bandwidth: 1.07},
		{Config: versadep.Config{Style: versadep.WarmPassive, Replicas: 3},
			Clients: 1, Latency: 2400 * time.Microsecond, Bandwidth: 0.9},
	}
	rows, _ := versadep.ScalabilityPolicy(measurements, 1, req)
	fmt.Printf("%d client(s): %s tolerating %d fault(s)\n",
		rows[0].Clients, rows[0].Config, rows[0].FaultsTolerated)
	// Output: 1 client(s): A(3) tolerating 2 fault(s)
}
