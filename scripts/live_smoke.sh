#!/usr/bin/env bash
# Live-cluster smoke tests over real TCP.
#
# Scenario 1: three vdnode replicas, one client driving the replicated
# counter, and a kill -9 of the primary mid-run. Passes iff the client
# completes its full request cycle despite the crash — the end-to-end
# failover guarantee on the real transport rather than the simulated
# fabric.
#
# Scenario 2: a joiner receiving a large chunked state transfer is
# kill -9'd mid-stream, then restarted under the same name and port.
# Passes iff the restarted joiner is re-admitted, receives a fresh
# transfer (the leader aborts the orphaned cursor when the joiner drops
# from the view), and reports synced — liveness of the transfer path
# across a joiner crash, riding the transport's dial-retry reconnect.
#
# Scenario 3: a two-shard deployment — two independent 3-replica groups
# behind the consistent-hash routing tier, two sharded clients spraying
# the object keyspace across both, an aggregator scraping one member of
# each shard with a per-shard label, and a kill -9 of one shard's
# primary mid-run. Passes iff both clients complete every request (the
# killed shard fails over, the other is undisturbed) and the
# aggregator's merged multi-shard exposition lints clean.
set -euo pipefail
cd "$(dirname "$0")/.."

REQUESTS=${REQUESTS:-400}
WORK=$(mktemp -d)
PIDS=()
cleanup() {
  for pid in "${PIDS[@]}"; do kill -9 "$pid" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/vdnode" ./cmd/vdnode
go build -o "$WORK/promlint" ./cmd/promlint

PEERS="ra=127.0.0.1:7001,rb=127.0.0.1:7002,rc=127.0.0.1:7003"
# Every replica serves live introspection and self-grades a lenient SLO,
# so the smoke can validate the /metrics exposition format and the /slo
# evaluation on a real deployment, not just in unit tests.
OBS_SLO="p99<250ms,avail>0.9:2s"

"$WORK/vdnode" -role replica -name ra -bind 127.0.0.1:7001 -peers "$PEERS" \
  -introspect 127.0.0.1:7021 -slo "$OBS_SLO" >"$WORK/ra.log" 2>&1 &
RA=$!
PIDS+=("$RA")
sleep 1
"$WORK/vdnode" -role replica -name rb -bind 127.0.0.1:7002 -seeds ra -peers "$PEERS" \
  -introspect 127.0.0.1:7022 -slo "$OBS_SLO" >"$WORK/rb.log" 2>&1 &
PIDS+=("$!")
sleep 1
"$WORK/vdnode" -role replica -name rc -bind 127.0.0.1:7003 -seeds ra -peers "$PEERS" \
  -introspect 127.0.0.1:7023 -slo "$OBS_SLO" >"$WORK/rc.log" 2>&1 &
PIDS+=("$!")
sleep 1

"$WORK/vdnode" -role client -name c1 -bind 127.0.0.1:7010 -members ra,rb,rc \
  -peers "$PEERS" -requests "$REQUESTS" >"$WORK/client.log" 2>&1 &
CLIENT=$!
PIDS+=("$CLIENT")

# Kill the primary once the client is demonstrably mid-run.
for _ in $(seq 1 100); do
  grep -q "request 50 ->" "$WORK/client.log" && break
  sleep 0.1
done
kill -9 "$RA"
echo "smoke: killed primary ra (pid $RA) mid-run"

fail() {
  echo "--- client.log ---"
  cat "$WORK/client.log"
  for r in ra rb rc; do
    echo "--- $r.log (tail) ---"
    tail -20 "$WORK/$r.log"
  done
  exit 1
}

if ! wait "$CLIENT"; then
  echo "smoke: client exited with an error after the primary crash"
  fail
fi
if ! grep -q "done: $REQUESTS requests" "$WORK/client.log"; then
  echo "smoke: client never reported completing all $REQUESTS requests"
  fail
fi
echo "smoke: client completed all $REQUESTS requests across a primary crash"
grep -h "failover complete" "$WORK"/r?.log || true

# Exposition + SLO checks against a surviving replica: every /metrics
# line must parse as well-formed Prometheus text (malformed families fail
# the build), and /slo must serve an evaluated attainment.
curl -sf http://127.0.0.1:7022/metrics >"$WORK/rb-metrics.txt" || {
  echo "smoke: could not scrape rb's /metrics"; fail; }
"$WORK/promlint" "$WORK/rb-metrics.txt" || {
  echo "smoke: rb's /metrics exposition is malformed"; fail; }
grep -q "versadep_replication_failovers" "$WORK/rb-metrics.txt" || {
  echo "smoke: rb's /metrics is missing replication counters"; fail; }
grep -q "versadep_process_goroutines" "$WORK/rb-metrics.txt" || {
  echo "smoke: rb's /metrics is missing process self-gauges"; fail; }
curl -sf http://127.0.0.1:7022/slo >"$WORK/rb-slo.json" || {
  echo "smoke: could not fetch rb's /slo"; fail; }
grep -q '"attainment"' "$WORK/rb-slo.json" || {
  echo "smoke: rb's /slo has no attainment field"; fail; }
echo "smoke: rb's /metrics exposition validates and /slo evaluates"

# ---------------------------------------------------------------------------
# Scenario 2: joiner crash mid-transfer, restart, resume to synced.
# A fresh two-replica group carries 2 MB of state in 2 KB chunks so the
# joiner transfer spans real wall time on loopback.
for pid in "${PIDS[@]}"; do kill -9 "$pid" 2>/dev/null || true; done
wait 2>/dev/null || true
PIDS=()

# 32 MB of state in 2 KB chunks with a window of 1 makes the transfer
# ack-round-trip bound — real wall time even on loopback, so the kill
# below lands mid-stream. The chunk flood can delay heartbeats, so the
# failure detector is loosened to 2 s (the post-kill sleep below must
# exceed it so the dead joiner leaves the view before its replacement
# asks to join).
XPEERS="xa=127.0.0.1:7101,xb=127.0.0.1:7102,xj=127.0.0.1:7103"
XFER_FLAGS=(-state-bytes $((32 * 1024 * 1024)) -transfer-chunk 2048 -transfer-window 1
  -suspect-after 2s)

"$WORK/vdnode" -role replica -name xa -bind 127.0.0.1:7101 -peers "$XPEERS" \
  "${XFER_FLAGS[@]}" >"$WORK/xa.log" 2>&1 &
PIDS+=("$!")
sleep 1
"$WORK/vdnode" -role replica -name xb -bind 127.0.0.1:7102 -seeds xa -peers "$XPEERS" \
  "${XFER_FLAGS[@]}" >"$WORK/xb.log" 2>&1 &
PIDS+=("$!")
for _ in $(seq 1 300); do
  grep -q "transfer complete" "$WORK/xb.log" && break
  sleep 0.1
done

start_joiner() {
  # exec replaces the subshell so $! is the vdnode pid, not a wrapper.
  exec "$WORK/vdnode" -role replica -name xj -bind 127.0.0.1:7103 -seeds xa -peers "$XPEERS" \
    "${XFER_FLAGS[@]}" -dial-attempts 12 -dial-backoff 100ms "$@"
}
start_joiner >"$WORK/xj.log" 2>&1 &
XJ=$!
PIDS+=("$XJ")

xfail() {
  for r in xa xb xj xj2; do
    echo "--- $r.log (tail) ---"
    tail -20 "$WORK/$r.log" 2>/dev/null || true
  done
  exit 1
}

# Kill the joiner once the leader reports its transfer in flight (the
# joiner itself only logs milestones on chunk receipt).
started=false
for _ in $(seq 1 500); do
  if grep -q "transfer started with xj" "$WORK/xa.log"; then started=true; break; fi
  sleep 0.02
done
if ! $started; then
  echo "smoke: leader never reported a transfer to the joiner"
  xfail
fi
kill -9 "$XJ"
if grep -q "transfer complete with xa" "$WORK/xj.log"; then
  echo "smoke: transfer finished before the kill landed — not a mid-transfer crash"
  xfail
fi
echo "smoke: killed joiner xj mid-transfer"
sleep 4

# Same name, same port: the group must re-admit it and transfer again.
start_joiner >"$WORK/xj2.log" 2>&1 &
PIDS+=("$!")
synced=false
for _ in $(seq 1 600); do
  if grep -q "transfer complete with xa" "$WORK/xj2.log" && \
     grep -q "synced=true" "$WORK/xj2.log"; then synced=true; break; fi
  sleep 0.1
done
if ! $synced; then
  echo "smoke: restarted joiner never resumed to synced"
  xfail
fi
echo "smoke: restarted joiner re-admitted and synced after mid-transfer crash"
grep -h "transfer" "$WORK/xj2.log" | head -3 || true

# ---------------------------------------------------------------------------
# Scenario 3: two shards, sharded clients, primary kill in one shard.
for pid in "${PIDS[@]}"; do kill -9 "$pid" 2>/dev/null || true; done
wait 2>/dev/null || true
PIDS=()

# Loopback TCP clears ~3k req/s, so the request count must be high
# enough that the primary kill below genuinely lands mid-run.
SHARD_REQUESTS=${SHARD_REQUESTS:-2000}
SPEERS="sa=127.0.0.1:7201,sb=127.0.0.1:7202,sc=127.0.0.1:7203,ta=127.0.0.1:7204,tb=127.0.0.1:7205,tc=127.0.0.1:7206"
SHARD_MEMBERS="0:sa,sb,sc;1:ta,tb,tc"

start_shard_replica() { # name bind shard seeds extra...
  local name=$1 bind=$2 shard=$3 seeds=$4; shift 4
  local args=(-role replica -name "$name" -bind "$bind" -peers "$SPEERS" -shard "$shard")
  [ -n "$seeds" ] && args+=(-seeds "$seeds")
  "$WORK/vdnode" "${args[@]}" "$@" >"$WORK/$name.log" 2>&1 &
  PIDS+=("$!")
}

start_shard_replica sa 127.0.0.1:7201 0/2 ""
start_shard_replica ta 127.0.0.1:7204 1/2 ""
sleep 1
start_shard_replica sb 127.0.0.1:7202 0/2 sa -introspect 127.0.0.1:7221
start_shard_replica tb 127.0.0.1:7205 1/2 ta -introspect 127.0.0.1:7222
sleep 1
start_shard_replica sc 127.0.0.1:7203 0/2 sa
start_shard_replica tc 127.0.0.1:7206 1/2 ta
TA_PID=${PIDS[1]}
sleep 1

"$WORK/vdnode" -role aggregator -bind 127.0.0.1:7230 \
  -scrape "sb@0=http://127.0.0.1:7221,tb@1=http://127.0.0.1:7222" \
  -scrape-every 500ms >"$WORK/agg.log" 2>&1 &
PIDS+=("$!")

"$WORK/vdnode" -role client -name c1 -bind 127.0.0.1:7210 -peers "$SPEERS" \
  -shard-members "$SHARD_MEMBERS" -requests "$SHARD_REQUESTS" >"$WORK/c1.log" 2>&1 &
C1=$!
PIDS+=("$C1")
"$WORK/vdnode" -role client -name c2 -bind 127.0.0.1:7211 -peers "$SPEERS" \
  -shard-members "$SHARD_MEMBERS" -requests "$SHARD_REQUESTS" >"$WORK/c2.log" 2>&1 &
C2=$!
PIDS+=("$C2")

sfail() {
  for f in c1 c2 sa sb sc ta tb tc agg; do
    echo "--- $f.log (tail) ---"
    tail -20 "$WORK/$f.log" 2>/dev/null || true
  done
  exit 1
}

# Kill shard 1's primary once both clients are demonstrably mid-run.
for _ in $(seq 1 400); do
  grep -q "request 50 ->" "$WORK/c1.log" && grep -q "request 50 ->" "$WORK/c2.log" && break
  sleep 0.05
done
kill -9 "$TA_PID"
echo "smoke: killed shard 1's primary ta (pid $TA_PID) mid-run"
if grep -q "done: $SHARD_REQUESTS requests" "$WORK/c1.log" && \
   grep -q "done: $SHARD_REQUESTS requests" "$WORK/c2.log"; then
  echo "smoke: WARNING both clients finished before the kill landed — raise SHARD_REQUESTS"
fi

for c in "$C1" "$C2"; do
  if ! wait "$c"; then
    echo "smoke: a sharded client exited with an error after the shard-primary crash"
    sfail
  fi
done
for f in c1 c2; do
  if ! grep -q "done: $SHARD_REQUESTS requests" "$WORK/$f.log"; then
    echo "smoke: $f never reported completing all $SHARD_REQUESTS requests"
    sfail
  fi
done
echo "smoke: both sharded clients completed all $SHARD_REQUESTS requests across a shard-primary crash"

# The aggregator's merged multi-shard exposition must lint clean and
# carry the per-shard labels (both the replicas' own shard info gauges,
# scraped directly, and the aggregator's labeled up-gauges). The clients
# can outrun the first scrape tick, so poll until both shards report up
# and the merged replica counters have landed.
scraped=false
for _ in $(seq 1 50); do
  if curl -sf http://127.0.0.1:7230/metrics >"$WORK/agg-metrics.txt" 2>/dev/null &&
     grep -q 'versadep_shard_up{shard="0",node="sb"} 1' "$WORK/agg-metrics.txt" &&
     grep -q 'versadep_shard_up{shard="1",node="tb"} 1' "$WORK/agg-metrics.txt" &&
     grep -q 'versadep_gcs_view_changes' "$WORK/agg-metrics.txt"; then
    scraped=true; break
  fi
  sleep 0.2
done
if ! $scraped; then
  echo "smoke: aggregator never served a merged exposition with both shards up"
  sfail
fi
"$WORK/promlint" "$WORK/agg-metrics.txt" || {
  echo "smoke: the aggregator's merged exposition is malformed"; sfail; }
for port in 7221 7222; do
  curl -sf "http://127.0.0.1:$port/metrics" >"$WORK/shard-$port.txt" || {
    echo "smoke: could not scrape the shard replica on $port"; sfail; }
  "$WORK/promlint" "$WORK/shard-$port.txt" || {
    echo "smoke: shard replica exposition on $port is malformed"; sfail; }
done
grep -q 'versadep_shard_info{shard="0"} 1' "$WORK/shard-7221.txt" || {
  echo "smoke: sb does not expose its shard info gauge"; sfail; }
grep -q 'versadep_shard_info{shard="1"} 1' "$WORK/shard-7222.txt" || {
  echo "smoke: tb does not expose its shard info gauge"; sfail; }
echo "smoke: merged multi-shard exposition lints clean with per-shard labels"
