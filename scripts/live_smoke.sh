#!/usr/bin/env bash
# Live-cluster smoke test: three vdnode replicas over real TCP, one
# client driving the replicated counter, and a kill -9 of the primary
# mid-run. Passes iff the client completes its full request cycle
# despite the crash — the end-to-end failover guarantee, exercised on
# the real transport rather than the simulated fabric.
set -euo pipefail
cd "$(dirname "$0")/.."

REQUESTS=${REQUESTS:-400}
WORK=$(mktemp -d)
PIDS=()
cleanup() {
  for pid in "${PIDS[@]}"; do kill -9 "$pid" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/vdnode" ./cmd/vdnode

PEERS="ra=127.0.0.1:7001,rb=127.0.0.1:7002,rc=127.0.0.1:7003"

"$WORK/vdnode" -role replica -name ra -bind 127.0.0.1:7001 -peers "$PEERS" \
  >"$WORK/ra.log" 2>&1 &
RA=$!
PIDS+=("$RA")
sleep 1
"$WORK/vdnode" -role replica -name rb -bind 127.0.0.1:7002 -seeds ra -peers "$PEERS" \
  >"$WORK/rb.log" 2>&1 &
PIDS+=("$!")
sleep 1
"$WORK/vdnode" -role replica -name rc -bind 127.0.0.1:7003 -seeds ra -peers "$PEERS" \
  >"$WORK/rc.log" 2>&1 &
PIDS+=("$!")
sleep 1

"$WORK/vdnode" -role client -name c1 -bind 127.0.0.1:7010 -members ra,rb,rc \
  -peers "$PEERS" -requests "$REQUESTS" >"$WORK/client.log" 2>&1 &
CLIENT=$!
PIDS+=("$CLIENT")

# Kill the primary once the client is demonstrably mid-run.
for _ in $(seq 1 100); do
  grep -q "request 50 ->" "$WORK/client.log" && break
  sleep 0.1
done
kill -9 "$RA"
echo "smoke: killed primary ra (pid $RA) mid-run"

fail() {
  echo "--- client.log ---"
  cat "$WORK/client.log"
  for r in ra rb rc; do
    echo "--- $r.log (tail) ---"
    tail -20 "$WORK/$r.log"
  done
  exit 1
}

if ! wait "$CLIENT"; then
  echo "smoke: client exited with an error after the primary crash"
  fail
fi
if ! grep -q "done: $REQUESTS requests" "$WORK/client.log"; then
  echo "smoke: client never reported completing all $REQUESTS requests"
  fail
fi
echo "smoke: client completed all $REQUESTS requests across a primary crash"
grep -h "failover complete" "$WORK"/r?.log || true
